//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored `serde`
//! stub. Parses the item's raw token stream directly (no `syn`/`quote`
//! available offline) and emits impls of the stub's `Serialize` /
//! `Deserialize` traits over the stub's `Json` tree.
//!
//! Supported shapes — exactly what this workspace uses:
//! - named-field structs (including a single type parameter, e.g. `Dag<N>`)
//! - tuple structs (1-field serializes as the inner value, like serde
//!   newtypes; `#[serde(transparent)]` is accepted and identical)
//! - enums: unit variants (string), newtype/tuple/struct variants
//!   (externally tagged `{"Variant": ...}`)
//! - `#[serde(untagged)]` enums (first variant that deserializes wins)
//! - `#[serde(rename_all = "lowercase")]` on unit-variant enums
//! - `#[serde(default)]` on named fields (missing key → `Default::default()`)

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    /// `#[serde(default)]`: fall back to `Default::default()` when the key
    /// is absent from the document.
    default: bool,
}

#[derive(Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    untagged: bool,
    rename_lowercase: bool,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut untagged = false;
    let mut rename_lowercase = false;

    // attributes + visibility before the `struct`/`enum` keyword
    while i < toks.len() {
        if is_punct(&toks[i], '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                scan_serde_attr(g, &mut untagged, &mut rename_lowercase);
            }
            i += 2;
        } else if is_ident(&toks[i], "struct") || is_ident(&toks[i], "enum") {
            break;
        } else {
            i += 1; // `pub`, `pub(crate)` group, etc.
        }
    }
    let is_enum = is_ident(&toks[i], "enum");
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;

    // generic parameters: collect type-param idents until the matching `>`
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1u32;
        let mut expect_param = true;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Punct(p) if p.as_char() == ':' => expect_param = false,
                TokenTree::Ident(id) if expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    let body = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            t => panic!("expected enum body, found {t}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Body::Struct(Fields::Unit),
        }
    };

    Input {
        name,
        generics,
        untagged,
        rename_lowercase,
        body,
    }
}

/// Is this attribute group (the brackets after `#`) `serde(default)`?
fn is_serde_default(g: &Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() || !is_ident(&toks[0], "serde") {
        return false;
    }
    match toks.get(1) {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn scan_serde_attr(g: &Group, untagged: &mut bool, rename_lowercase: &mut bool) {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() || !is_ident(&toks[0], "serde") {
        return;
    }
    if let Some(TokenTree::Group(inner)) = toks.get(1) {
        let s: Vec<TokenTree> = inner.stream().into_iter().collect();
        let mut j = 0;
        while j < s.len() {
            match s[j].to_string().as_str() {
                "untagged" => *untagged = true,
                // transparent newtypes already serialize as the inner value
                "transparent" => {}
                "rename_all" => {
                    let lit = s.get(j + 2).map(|t| t.to_string()).unwrap_or_default();
                    assert!(
                        lit.contains("lowercase"),
                        "serde stub: unsupported rename_all {lit}"
                    );
                    *rename_lowercase = true;
                    j += 2;
                }
                other => panic!("serde stub: unsupported attribute `{other}`"),
            }
            j += 1;
            // skip a separating comma if present
            if j < s.len() && is_punct(&s[j], ',') {
                j += 1;
            }
        }
    }
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut default = false;
        while i < toks.len() && is_punct(&toks[i], '#') {
            // attribute: `#` + bracket group; honor `#[serde(default)]`
            if let Some(TokenTree::Group(attr)) = toks.get(i + 1) {
                default |= is_serde_default(attr);
            }
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        if is_ident(&toks[i], "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // `pub(crate)` &c.
            }
        }
        match &toks[i] {
            TokenTree::Ident(id) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            t => panic!("expected field name, found {t}"),
        }
        i += 2; // name + ':'
                // skip the type: everything until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, found {t}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn impl_header(input: &Input, trait_name: &str) -> String {
    let name = &input.name;
    if input.generics.is_empty() {
        format!("#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::{trait_name} for {name}")
    } else {
        let bounds = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        let params = input.generics.join(", ");
        format!(
            "#[automatically_derived]\n#[allow(clippy::all)]\nimpl<{bounds}> ::serde::{trait_name} for {name}<{params}>"
        )
    }
}

fn variant_tag(input: &Input, v: &Variant) -> String {
    if input.rename_lowercase {
        v.name.to_lowercase()
    } else {
        v.name.clone()
    }
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header(input, "Serialize");
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let pushes = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Json::Obj(::std::vec![{pushes}])")
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::ser(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::ser(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Json::Arr(::std::vec![{items}])")
        }
        Body::Struct(Fields::Unit) => "::serde::Json::Null".to_string(),
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let tag = variant_tag(input, v);
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            let payload = if input.untagged {
                                "::serde::Json::Null".to_string()
                            } else {
                                format!("::serde::Json::Str(::std::string::String::from(\"{tag}\"))")
                            };
                            format!("Self::{vname} => {payload},")
                        }
                        Fields::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|k| format!("__f{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = if *n == 1 {
                                "::serde::Serialize::ser(__f0)".to_string()
                            } else {
                                let items = (0..*n)
                                    .map(|k| format!("::serde::Serialize::ser(__f{k})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Json::Arr(::std::vec![{items}])")
                            };
                            let payload = if input.untagged {
                                inner
                            } else {
                                format!(
                                    "::serde::Json::Obj(::std::vec![(::std::string::String::from(\"{tag}\"), {inner})])"
                                )
                            };
                            format!("Self::{vname}({binds}) => {payload},")
                        }
                        Fields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = format!("::serde::Json::Obj(::std::vec![{pushes}])");
                            let payload = if input.untagged {
                                inner
                            } else {
                                format!(
                                    "::serde::Json::Obj(::std::vec![(::std::string::String::from(\"{tag}\"), {inner})])"
                                )
                            };
                            format!("Self::{vname} {{ {binds} }} => {payload},")
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!("{header} {{\n fn ser(&self) -> ::serde::Json {{ {body} }}\n}}")
}

fn deser_named_fields(fields: &[Field], obj_expr: &str, ctor: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            let getter = if f.default {
                "get_field_default"
            } else {
                "get_field"
            };
            let f = &f.name;
            format!("{f}: ::serde::{getter}({obj_expr}, \"{f}\")?,")
        })
        .collect::<Vec<_>>()
        .join(" ");
    format!("{ctor} {{ {inits} }}")
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header(input, "Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let ctor = deser_named_fields(fields, "__o", "Self");
            format!(
                "match __j {{ ::serde::Json::Obj(__o) => ::std::result::Result::Ok({ctor}), \
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected object for {name}\")) }}"
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::deser(__j)?))".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Deserialize::deser(&__a[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __j {{ ::serde::Json::Arr(__a) if __a.len() == {n} => \
                 ::std::result::Result::Ok(Self({items})), \
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected {n}-element array for {name}\")) }}"
            )
        }
        Body::Struct(Fields::Unit) => "::std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) if input.untagged => {
            let attempts = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "if ::std::matches!(__j, ::serde::Json::Null) {{ return ::std::result::Result::Ok(Self::{vname}); }}"
                        ),
                        Fields::Tuple(1) => format!(
                            "{{ let __r: ::std::result::Result<_, ::serde::DeError> = ::serde::Deserialize::deser(__j); \
                             if let ::std::result::Result::Ok(__v) = __r {{ return ::std::result::Result::Ok(Self::{vname}(__v)); }} }}"
                        ),
                        Fields::Tuple(n) => {
                            let items = (0..*n)
                                .map(|k| format!("::serde::Deserialize::deser(&__a[{k}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{{ let __try = || -> ::std::result::Result<Self, ::serde::DeError> {{ \
                                 match __j {{ ::serde::Json::Arr(__a) if __a.len() == {n} => ::std::result::Result::Ok(Self::{vname}({items})), \
                                 _ => ::std::result::Result::Err(::serde::DeError::new(\"shape mismatch\")) }} }}; \
                                 if let ::std::result::Result::Ok(__v) = __try() {{ return ::std::result::Result::Ok(__v); }} }}"
                            )
                        }
                        Fields::Named(fields) => {
                            let ctor = deser_named_fields(fields, "__fo", &format!("Self::{vname}"));
                            format!(
                                "{{ let __try = || -> ::std::result::Result<Self, ::serde::DeError> {{ \
                                 match __j {{ ::serde::Json::Obj(__fo) => ::std::result::Result::Ok({ctor}), \
                                 _ => ::std::result::Result::Err(::serde::DeError::new(\"shape mismatch\")) }} }}; \
                                 if let ::std::result::Result::Ok(__v) = __try() {{ return ::std::result::Result::Ok(__v); }} }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "{attempts}\n::std::result::Result::Err(::serde::DeError::new(\"no untagged variant of {name} matched\"))"
            )
        }
        Body::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            let str_arm = if unit.is_empty() {
                format!(
                    "::serde::Json::Str(_) => ::std::result::Result::Err(::serde::DeError::new(\"unexpected string for {name}\")),"
                )
            } else {
                let arms = unit
                    .iter()
                    .map(|v| {
                        let tag = variant_tag(input, v);
                        let vname = &v.name;
                        format!("\"{tag}\" => ::std::result::Result::Ok(Self::{vname}),")
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                format!(
                    "::serde::Json::Str(__s) => match __s.as_str() {{\n{arms}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(&::std::format!(\"unknown {name} variant {{__other}}\"))), }},"
                )
            };
            let obj_arm = if payload.is_empty() {
                String::new()
            } else {
                let arms = payload
                    .iter()
                    .map(|v| {
                        let tag = variant_tag(input, v);
                        let vname = &v.name;
                        let build = match &v.fields {
                            Fields::Tuple(1) => format!(
                                "::std::result::Result::Ok(Self::{vname}(::serde::Deserialize::deser(__v)?))"
                            ),
                            Fields::Tuple(n) => {
                                let items = (0..*n)
                                    .map(|k| format!("::serde::Deserialize::deser(&__a[{k}])?"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!(
                                    "match __v {{ ::serde::Json::Arr(__a) if __a.len() == {n} => ::std::result::Result::Ok(Self::{vname}({items})), \
                                     _ => ::std::result::Result::Err(::serde::DeError::new(\"expected {n}-element array for {name}::{vname}\")) }}"
                                )
                            }
                            Fields::Named(fields) => {
                                let ctor =
                                    deser_named_fields(fields, "__fo", &format!("Self::{vname}"));
                                format!(
                                    "match __v {{ ::serde::Json::Obj(__fo) => ::std::result::Result::Ok({ctor}), \
                                     _ => ::std::result::Result::Err(::serde::DeError::new(\"expected object for {name}::{vname}\")) }}"
                                )
                            }
                            Fields::Unit => unreachable!(),
                        };
                        format!("\"{tag}\" => {{ {build} }}")
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                format!(
                    "::serde::Json::Obj(__o) if __o.len() == 1 => {{\n\
                     let (__k, __v) = &__o[0];\n\
                     match __k.as_str() {{\n{arms}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(&::std::format!(\"unknown {name} variant {{__other}}\"))), }} }},"
                )
            };
            format!(
                "match __j {{\n{str_arm}\n{obj_arm}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected variant of {name}\")), }}"
            )
        }
    };
    format!(
        "{header} {{\n fn deser(__j: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
}
