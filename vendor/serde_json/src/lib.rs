//! Minimal in-tree `serde_json` replacement for offline builds.
//!
//! Renders and parses the vendored `serde` stub's [`Json`] tree with the
//! same surface this workspace uses: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. Output mirrors real serde_json's conventions —
//! compact form has no whitespace, pretty form indents by two spaces, and
//! floats keep a fractional part (`1.0`, not `1`) so float/integer values
//! round-trip distinguishably.

use serde::{DeError, Deserialize, Json, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.ser(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.ser(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let j = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deser(&j)?)
}

// ---------------------------------------------------------------- writer

fn write_json(j: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip rendering and keeps
                // the `1.0` form for integral floats, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Obj(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            items.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(items));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Called with `pos` on the `u` of `\uXXXX`; leaves `pos` past the
    /// escape (including a consumed low surrogate, if paired).
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // high surrogate: require a following \uXXXX low surrogate
            if self.literal("\\u") {
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        assert_eq!(to_string(&m).unwrap(), r#"{"a":[1,2]}"#);
        assert_eq!(
            to_string_pretty(&m).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn float_keeps_fraction() {
        assert_eq!(to_string(&42.0f64).unwrap(), "42.0");
        assert_eq!(to_string(&0.15f64).unwrap(), "0.15");
    }

    #[test]
    fn parse_round_trip() {
        let v: BTreeMap<String, f64> = from_str(r#"{ "x": 1.5, "y": 2 }"#).unwrap();
        assert_eq!(v["x"], 1.5);
        assert_eq!(v["y"], 2.0);
    }

    #[test]
    fn string_escapes() {
        let s: String = from_str(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndAé");
        let back = to_string(&s).unwrap();
        let again: String = from_str(&back).unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
