//! The paper's §3.6 policy example, live: "scale out the number of VPN
//! gateways and attached tunnels if traffic throughput is close to their
//! capacity."
//!
//! A diurnal traffic trace (with a lunchtime burst) drives a
//! [`ThresholdScalePolicy`] watching gateway throughput. Every scaling
//! action is realized by regenerating the program with the new `count` and
//! re-converging — policies *evolve the IaC program*, they don't poke the
//! cloud directly.
//!
//! ```text
//! cargo run --example autoscaler
//! ```
//!
//! [`ThresholdScalePolicy`]: cloudless::policy::ThresholdScalePolicy

use cloudless::cloud::CloudConfig;
use cloudless::policy::{Action, ThresholdScalePolicy, TraceGen};
use cloudless::types::{SimDuration, SimTime};
use cloudless::{Cloudless, Config};

const CAPACITY_MBPS: f64 = 1000.0;

fn program(gateways: usize, tunnels_per_gw: usize) -> String {
    format!(
        r#"
resource "aws_vpc" "edge" {{ cidr_block = "10.0.0.0/16" }}
resource "aws_vpn_gateway" "gw" {{
  count         = {gateways}
  vpc_id        = aws_vpc.edge.id
  name          = "edge-gw-${{count.index}}"
  capacity_mbps = {CAPACITY_MBPS}
}}
resource "aws_vpn_tunnel" "tun" {{
  count      = {}
  gateway_id = aws_vpn_gateway.gw[count.index % {gateways}].id
  peer_ip    = "198.51.100.${{count.index}}"
}}
"#,
        gateways * tunnels_per_gw
    )
}

fn main() {
    let mut engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        ..Config::default()
    });

    let mut gateways = 2usize;
    const TUNNELS_PER_GW: usize = 2;
    engine
        .converge(&program(gateways, TUNNELS_PER_GW))
        .expect("initial deploy");
    println!("initial fleet: {gateways} gateways\n");

    // the policy: scale between 1 and 8 gateways on throughput utilization
    let mut policy = ThresholdScalePolicy::new(
        "aws_vpn_gateway.gw",
        "throughput_mbps",
        CAPACITY_MBPS,
        gateways,
    );
    policy.max_instances = 8;
    engine.controller_mut().register(Box::new(policy));

    // demand: diurnal around 1.2 Gbps with an 11:00–13:00 surge to 3×
    let trace = TraceGen::new(1_200.0, 42).with_burst(
        SimTime(11 * 3_600_000),
        SimDuration::from_mins(120),
        3.0,
    );

    println!(
        "{:>6} {:>14} {:>10} {:>9}  action",
        "hour", "demand(mbps)", "capacity", "util"
    );
    let mut scale_events = 0;
    for half_hour in 0..48u64 {
        let t = SimTime(half_hour * 1_800_000);
        engine.cloud_mut().advance_to(t);
        let demand = trace.demand(t);
        let actions = engine.observe_metric("aws_vpn_gateway.gw[0]", "throughput_mbps", demand);
        let capacity = gateways as f64 * CAPACITY_MBPS;
        let mut note = String::new();
        for a in actions {
            if let Action::ScaleBlock { to, reason, .. } = a {
                scale_events += 1;
                note = format!("scale {gateways} → {to}: {reason}");
                gateways = to;
                // realize the action by evolving the program
                let out = engine
                    .converge(&program(gateways, TUNNELS_PER_GW))
                    .expect("scale apply");
                assert!(out.apply.all_ok(), "{:?}", out.apply.errors());
            }
        }
        if half_hour % 2 == 0 || !note.is_empty() {
            println!(
                "{:>5}h {:>14.0} {:>10.0} {:>8.0}%  {note}",
                half_hour / 2,
                demand,
                capacity,
                100.0 * demand / capacity
            );
        }
    }
    println!(
        "\n{scale_events} scaling action(s); final fleet: {gateways} gateways, {} resources total",
        engine.state().len()
    );
    println!(
        "every action is in the audit log: {} entries",
        engine.controller_mut().audit().len()
    );
}
