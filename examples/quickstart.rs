//! Quickstart: deploy the paper's Figure 2 program end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Parses the exact HCL snippet from the paper, validates it at the
//! cloud-rules level, plans, applies against the simulated cloud, and shows
//! the resulting state — including the apply-time resolution of the
//! deferred `nic_ids` reference.

use cloudless::cloud::CloudConfig;
use cloudless::{Cloudless, Config};

/// Figure 2 of the paper (with a concrete region pin via provider config).
const FIGURE2: &str = include_str!("hcl/quickstart.tf");

fn main() {
    let mut engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        ..Config::default()
    });

    println!("=== program (paper Figure 2) ===\n{FIGURE2}");

    let outcome = engine.converge(FIGURE2).expect("Figure 2 deploys cleanly");

    println!("=== plan ===\n{}", outcome.plan_text);
    println!(
        "=== apply ({}) ===\nvirtual makespan: {}   ops: {}   all ok: {}",
        outcome.apply.strategy,
        outcome.apply.makespan(),
        outcome.apply.ops_submitted,
        outcome.apply.all_ok()
    );

    println!("\n=== resulting state ===");
    for (addr, rec) in &engine.state().resources {
        println!("  {addr}  ->  {}  ({})", rec.id, rec.region);
    }

    let vm = engine
        .state()
        .get(&"aws_virtual_machine.vm1".parse().unwrap())
        .expect("vm deployed");
    println!(
        "\nthe VM's nic_ids resolved at apply time to: {}",
        vm.attr("nic_ids").expect("nic_ids recorded")
    );
    println!(
        "total cloud API calls: {}",
        engine.cloud().total_api_calls()
    );
}
