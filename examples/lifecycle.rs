//! The full Figure 1(b) lifecycle on one web-app infrastructure:
//!
//! develop → validate (catch a §3.2 bug at compile time) → deploy →
//! out-of-band drift → log-native detection (§3.5) → policy reaction
//! (§3.6) → incremental update (§3.3) → rollback via the time machine
//! (§3.4).
//!
//! ```text
//! cargo run --example lifecycle
//! ```

use cloudless::cloud::CloudConfig;
use cloudless::policy::builtin::DriftResponsePolicy;
use cloudless::types::Value;
use cloudless::{Cloudless, Config, ConvergeError};

const BROKEN: &str = r#"
resource "azure_resource_group" "rg" {
  name     = "prod"
  location = "westeurope"
}
resource "azure_network_interface" "nic" {
  name     = "web-nic"
  location = "westeurope"
}
resource "azure_virtual_machine" "web" {
  name     = "web"
  location = "eastus"                      # ← not where the NIC lives!
  nic_ids  = [azure_network_interface.nic.id]
}
"#;

const V1: &str = r#"
resource "azure_resource_group" "rg" {
  name     = "prod"
  location = "westeurope"
}
resource "azure_network_interface" "nic" {
  name     = "web-nic"
  location = "westeurope"
}
resource "azure_virtual_machine" "web" {
  name     = "web"
  location = "westeurope"
  size     = "Standard_D2s"
  nic_ids  = [azure_network_interface.nic.id]
}
"#;

/// V2 only resizes the VM — the incremental path should touch nothing else.
const V2: &str = r#"
resource "azure_resource_group" "rg" {
  name     = "prod"
  location = "westeurope"
}
resource "azure_network_interface" "nic" {
  name     = "web-nic"
  location = "westeurope"
}
resource "azure_virtual_machine" "web" {
  name     = "web"
  location = "westeurope"
  size     = "Standard_D16s"
  nic_ids  = [azure_network_interface.nic.id]
}
"#;

fn main() {
    let mut engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        ..Config::default()
    });
    engine
        .controller_mut()
        .register(Box::new(DriftResponsePolicy));

    // -- validate: the paper's region-mismatch bug dies at compile time --
    println!("== 1. validating a buggy program (paper §3.2 example) ==");
    match engine.converge(BROKEN) {
        Err(ConvergeError::Validation(report)) => {
            println!("{}", report.diagnostics);
            println!(
                "(caught before any cloud op; API calls so far: {})\n",
                engine.cloud().total_api_calls()
            );
        }
        other => panic!("expected validation failure, got {other:?}"),
    }

    // -- deploy the fixed program --
    println!("== 2. deploying the fixed program ==");
    let v1 = engine.converge(V1).expect("v1 deploys");
    println!(
        "applied {} resources in {} (virtual)\n",
        engine.state().len(),
        v1.apply.makespan()
    );

    // -- drift happens --
    println!("== 3. a legacy script mutates the VM out of band (§3.5) ==");
    let vm_id = engine
        .state()
        .get(&"azure_virtual_machine.web".parse().unwrap())
        .unwrap()
        .id
        .clone();
    engine
        .cloud_mut()
        .out_of_band_update(
            "legacy-script",
            &vm_id,
            [("size".to_owned(), Value::from("Standard_B1ls"))].into(),
        )
        .unwrap();

    let (report, actions) = engine.watch_drift();
    for ev in &report.events {
        println!(
            "drift: {:?} on {} by {:?} (lag {})",
            ev.kind,
            ev.addr.as_ref().map(|a| a.to_string()).unwrap_or_default(),
            ev.principal.as_deref().unwrap_or("?"),
            ev.lag()
        );
    }
    for a in &actions {
        println!("policy action: {a:?}");
    }
    println!(
        "(log-native detection used {} resource API calls)\n",
        report.api_calls
    );

    // reconcile: re-converging stomps the drift (state must refresh first)
    engine.refresh();
    let reconciled = engine.converge(V1).expect("reconcile");
    println!(
        "re-applied {} change(s) to stomp the drift\n",
        reconciled.apply.ops_submitted
    );

    // -- incremental update --
    println!("== 4. resizing the VM (v2) ==");
    let calls_before = engine.cloud().total_api_calls();
    let checkpoint = engine.history().latest().unwrap().serial;
    let v2 = engine.converge(V2).expect("v2 applies");
    println!(
        "update ops: {} (API calls {}), makespan {}\n",
        v2.apply.ops_submitted,
        engine.cloud().total_api_calls() - calls_before,
        v2.apply.makespan()
    );

    // -- rollback --
    println!("== 5. rolling back to the checkpoint (time machine §3.4) ==");
    let plan = engine.plan_rollback_to(checkpoint).expect("checkpoint");
    println!(
        "rollback plan: {} in-place revert(s), {} redeployment(s)",
        plan.reverts(),
        plan.redeployments()
    );
    engine.execute_rollback(&plan).expect("rollback executes");
    let size = engine
        .state()
        .get(&"azure_virtual_machine.web".parse().unwrap())
        .unwrap()
        .attr("size")
        .cloned();
    println!("VM size after rollback: {}", size.unwrap());
    println!(
        "\nlifecycle complete; {} checkpoints recorded",
        engine.history().len()
    );
}
