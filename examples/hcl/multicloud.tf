# A sky-style multi-cloud deployment across aws + azure + gcp, exercising
# modules, count and for_each. Part of the lint-clean corpus.

# --- AWS leg: web fleet behind a load balancer, plus a VPN gateway ---
module "net" {
  source = "modules/network"
  cidr   = "10.10.0.0/16"
}
resource "aws_virtual_machine" "web" {
  count = 3
  name  = "web-${count.index}"
}
resource "aws_load_balancer" "lb" {
  name       = "web-lb"
  target_ids = [aws_virtual_machine.web[0].id, aws_virtual_machine.web[1].id, aws_virtual_machine.web[2].id]
}
resource "aws_vpc" "edge" { cidr_block = "10.20.0.0/16" }
resource "aws_vpn_gateway" "gw" {
  vpc_id        = aws_vpc.edge.id
  name          = "edge-gw"
  capacity_mbps = 1000
}

# --- Azure leg: storage per environment via for_each ---
resource "azure_resource_group" "rg" {
  name     = "sky"
  location = "westeurope"
}
resource "azure_storage_account" "store" {
  for_each       = ["dev", "staging", "prod"]
  name           = "sky${each.key}"
  resource_group = azure_resource_group.rg.id
  location       = "westeurope"
}

# --- GCP leg: batch workers ---
resource "gcp_network" "batch" { name = "batch-net" }
resource "gcp_subnetwork" "batch" {
  name          = "batch-subnet"
  network_id    = gcp_network.batch.id
  ip_cidr_range = "10.30.0.0/20"
}
resource "gcp_compute_instance" "worker" {
  count         = 4
  name          = "worker-${count.index}"
  subnetwork_id = gcp_subnetwork.batch.id
}
