# A small single-provider web stack: network, firewall, compute, storage.
# Part of the lint-clean corpus — `cloudless lint` must report no findings.

variable "env" { default = "prod" }

locals {
  vpc_cidr = "10.42.0.0/16"
}

resource "aws_vpc" "main" {
  cidr_block = local.vpc_cidr
  name       = "web-${var.env}"
}

resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.42.1.0/24"
}

resource "aws_security_group" "edge" {
  name   = "edge-${var.env}"
  vpc_id = aws_vpc.main.id
  ingress { port = 443 }
  ingress { port = 80 }
}

resource "aws_virtual_machine" "web" {
  name      = "web-${var.env}"
  subnet_id = aws_subnet.app.id
}

resource "aws_s3_bucket" "assets" {
  bucket = "web-assets-${var.env}"
}

output "web_id" { value = aws_virtual_machine.web.id }
output "assets_arn" { value = aws_s3_bucket.assets.arn }
