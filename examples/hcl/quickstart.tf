/* Simplified Terraform code snippet */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_network_interface" "n1" {
  name     = "example-nic"
  location = data.aws_region.current.name
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}
