# A reusable network module (per provider conventions kept simple).
# Used by multicloud.tf as `modules/network`; also linted standalone.

variable "cidr" {}
resource "aws_vpc" "main" { cidr_block = var.cidr }
resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(var.cidr, 8, 1)
}
output "subnet" { value = "app" }
