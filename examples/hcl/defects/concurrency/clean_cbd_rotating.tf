# False-positive guard: create_before_destroy with a *rotating* identity
# is the correct zero-downtime pattern — the successor's name embeds a
# computed value, so it cannot collide with its predecessor at plan time.
resource "aws_network" "net" {
  name       = "net"
  cidr_block = "10.9.0.0/16"
}

resource "aws_virtual_machine" "web" {
  name       = "web-${aws_network.net.id}"
  network_id = aws_network.net.id

  lifecycle {
    create_before_destroy = true
  }
}
