# Defect: compound — a dropped ordering edge feeding an aliased identity
# (ANA501 + ANA502). Exercises pass interaction: the cycle ties both
# blocks into one estate, so no deadlock (ANA503) may be reported.
resource "aws_virtual_machine" "reader" {
  name       = "shared-object"
  network_id = aws_virtual_machine.writer.id
}

resource "aws_virtual_machine" "writer" {
  name       = "shared-object"
  network_id = aws_virtual_machine.reader.id
}
