# Defect: lock-order inversion across independent estates (ANA503).
#
# Estate A (a0 -> a1) locks "lock-one" at wave 0, then "lock-two" at
# wave 1. Estate B (b0 -> b1) locks the same two objects in the opposite
# order. Converging both estates concurrently is the classic
# hold-and-wait deadlock; the aliases themselves are also write-write
# races (ANA502).
resource "aws_virtual_machine" "a0" {
  name = "lock-one"
}

resource "aws_virtual_machine" "a1" {
  name       = "lock-two"
  network_id = aws_virtual_machine.a0.id
}

resource "aws_virtual_machine" "b0" {
  name = "lock-two"
}

resource "aws_virtual_machine" "b1" {
  name       = "lock-one"
  network_id = aws_virtual_machine.b0.id
}
