# False-positive guard: shared name *prefixes* are not aliases.
#
# "app-1" and "app-10" collide under naive prefix matching; identity
# comparison must be exact-value.
resource "aws_virtual_machine" "one" {
  name = "app-1"
}

resource "aws_virtual_machine" "ten" {
  name = "app-10"
}

resource "aws_s3_bucket" "app" {
  bucket = "app-1"
}
