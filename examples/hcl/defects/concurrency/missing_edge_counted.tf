# Defect: missing happens-before edge across counted blocks (ANA501).
#
# Every instance of one fleet reads instance 0 of the other and vice
# versa; sealing drops a cycle-closing edge per direction. The analyzer
# reports once per (producer block, reader block) pair, not per instance.
resource "aws_virtual_machine" "blue" {
  count      = 3
  name       = "blue-${count.index}"
  network_id = aws_virtual_machine.green[0].id
}

resource "aws_virtual_machine" "green" {
  count      = 3
  name       = "green-${count.index}"
  network_id = aws_virtual_machine.blue[0].id
}
