# Defect: replace self-race (ANA504, warning).
#
# create_before_destroy with a plan-time-constant identity: every replace
# creates the successor under the *same* name the doomed predecessor
# still holds — a race of the resource against itself.
resource "aws_virtual_machine" "pinned" {
  name = "singleton"

  lifecycle {
    create_before_destroy = true
  }
}
