# Defect: aliasing between a counted fleet and a solo block (ANA502).
#
# node-1 is claimed twice: by fleet[1] (folded from count.index) and by
# the standalone block. Only the expanded-instance claims map catches it.
resource "aws_virtual_machine" "fleet" {
  count = 2
  name  = "node-${count.index}"
}

resource "aws_virtual_machine" "solo" {
  name = "node-1"
}
