# Defect: aliasing via for_each keys (ANA502).
#
# Two for_each expansions both mint the bucket "tenant-acme". Block-level
# hazard checks cannot see this — the collision exists only between
# *expanded* instances.
resource "aws_s3_bucket" "tenant" {
  for_each = ["acme", "globex"]
  bucket   = "tenant-${each.key}"
}

resource "aws_s3_bucket" "archive" {
  for_each = ["acme"]
  bucket   = "tenant-${each.key}"
}
