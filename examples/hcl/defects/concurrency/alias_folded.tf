# Defect: aliasing via folded names (ANA502).
#
# The two blocks spell their identity differently, but constant folding
# resolves both to the cloud-side object "svc-prod": a parallel apply is
# a write-write race on one machine.
variable "env" {
  default = "prod"
}

resource "aws_virtual_machine" "blue" {
  name = "svc-prod"
}

resource "aws_virtual_machine" "green" {
  name = "svc-${var.env}"
}
