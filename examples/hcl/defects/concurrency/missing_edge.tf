# Defect: missing happens-before edge (ANA501).
#
# The two machines read each other's computed `id`, so the planner must
# drop one ordering edge to stay acyclic. The surviving schedule may run
# the reader before (or concurrently with) its writer.
resource "aws_virtual_machine" "ingest" {
  name       = "ingest"
  network_id = aws_virtual_machine.index.id
}

resource "aws_virtual_machine" "index" {
  name       = "index"
  network_id = aws_virtual_machine.ingest.id
}
