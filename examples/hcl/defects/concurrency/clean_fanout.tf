# False-positive guard: a legitimate fan-out must analyze clean.
#
# Ten machines share one network; every read is ordered by a surviving
# edge and every identity is distinct.
resource "aws_network" "net" {
  name       = "net"
  cidr_block = "10.8.0.0/16"
}

resource "aws_virtual_machine" "web" {
  count      = 10
  name       = "web-${count.index}"
  network_id = aws_network.net.id
}
