//! A sky-style multi-cloud deployment (§4 positions cloudless against sky
//! computing) using modules, `for_each` and all three providers — and a
//! head-to-head of the three deployment schedulers on it (§3.3).
//!
//! ```text
//! cargo run --example multicloud
//! ```

use cloudless::cloud::CloudConfig;
use cloudless::deploy::Strategy;
use cloudless::hcl::program::ModuleLibrary;
use cloudless::{Cloudless, Config};

/// A reusable network module (per provider conventions kept simple).
const NETWORK_MODULE: &str = r#"
variable "cidr" {}
resource "aws_vpc" "main" { cidr_block = var.cidr }
resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(var.cidr, 8, 1)
}
output "subnet" { value = "app" }
"#;

const MULTI: &str = r#"
# --- AWS leg: web fleet behind a load balancer, plus a VPN gateway ---
module "net" {
  source = "modules/network"
  cidr   = "10.10.0.0/16"
}
resource "aws_virtual_machine" "web" {
  count = 3
  name  = "web-${count.index}"
}
resource "aws_load_balancer" "lb" {
  name       = "web-lb"
  target_ids = [aws_virtual_machine.web[0].id, aws_virtual_machine.web[1].id, aws_virtual_machine.web[2].id]
}
resource "aws_vpc" "edge" { cidr_block = "10.20.0.0/16" }
resource "aws_vpn_gateway" "gw" {
  vpc_id        = aws_vpc.edge.id
  name          = "edge-gw"
  capacity_mbps = 1000
}

# --- Azure leg: storage per environment via for_each ---
resource "azure_resource_group" "rg" {
  name     = "sky"
  location = "westeurope"
}
resource "azure_storage_account" "store" {
  for_each       = ["dev", "staging", "prod"]
  name           = "sky${each.key}"
  resource_group = azure_resource_group.rg.id
  location       = "westeurope"
}

# --- GCP leg: batch workers ---
resource "gcp_network" "batch" { name = "batch-net" }
resource "gcp_subnetwork" "batch" {
  name          = "batch-subnet"
  network_id    = gcp_network.batch.id
  ip_cidr_range = "10.30.0.0/20"
}
resource "gcp_compute_instance" "worker" {
  count         = 4
  name          = "worker-${count.index}"
  subnetwork_id = gcp_subnetwork.batch.id
}
"#;

fn run(strategy: Strategy) -> (cloudless::deploy::ApplyReport, usize) {
    let mut modules = ModuleLibrary::new();
    modules.insert("modules/network", NETWORK_MODULE);
    let mut engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        strategy,
        modules,
        ..Config::default()
    });
    let out = engine.converge(MULTI).expect("multi-cloud deploys");
    assert!(out.apply.all_ok(), "{:?}", out.apply.errors());
    (out.apply, engine.state().len())
}

fn main() {
    println!("deploying 1 program across aws + azure + gcp with three schedulers\n");
    println!(
        "{:<16} {:>14} {:>8} {:>10}",
        "strategy", "makespan", "ops", "resources"
    );
    for strategy in [
        Strategy::Sequential,
        Strategy::TerraformWalk { parallelism: 10 },
        Strategy::CriticalPath { max_in_flight: 64 },
    ] {
        let (report, n) = run(strategy);
        println!(
            "{:<16} {:>14} {:>8} {:>10}",
            report.strategy,
            report.makespan().to_string(),
            report.ops_submitted,
            n
        );
    }
    println!(
        "\nnote the gap: the ~40-virtual-minute VPN gateway dominates the critical\n\
         path; schedulers that start it late pay for it (paper §3.3)."
    );
}
