//! A sky-style multi-cloud deployment (§4 positions cloudless against sky
//! computing) using modules, `for_each` and all three providers — and a
//! head-to-head of the three deployment schedulers on it (§3.3).
//!
//! ```text
//! cargo run --example multicloud
//! ```

use cloudless::cloud::CloudConfig;
use cloudless::deploy::Strategy;
use cloudless::hcl::program::ModuleLibrary;
use cloudless::{Cloudless, Config};

/// A reusable network module (per provider conventions kept simple).
const NETWORK_MODULE: &str = include_str!("hcl/network_module.tf");

const MULTI: &str = include_str!("hcl/multicloud.tf");

fn run(strategy: Strategy) -> (cloudless::deploy::ApplyReport, usize) {
    let mut modules = ModuleLibrary::new();
    modules.insert("modules/network", NETWORK_MODULE);
    let mut engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        strategy,
        modules,
        ..Config::default()
    });
    let out = engine.converge(MULTI).expect("multi-cloud deploys");
    assert!(out.apply.all_ok(), "{:?}", out.apply.errors());
    (out.apply, engine.state().len())
}

fn main() {
    println!("deploying 1 program across aws + azure + gcp with three schedulers\n");
    println!(
        "{:<16} {:>14} {:>8} {:>10}",
        "strategy", "makespan", "ops", "resources"
    );
    for strategy in [
        Strategy::Sequential,
        Strategy::TerraformWalk { parallelism: 10 },
        Strategy::CriticalPath { max_in_flight: 64 },
    ] {
        let (report, n) = run(strategy);
        println!(
            "{:<16} {:>14} {:>8} {:>10}",
            report.strategy,
            report.makespan().to_string(),
            report.ops_submitted,
            n
        );
    }
    println!(
        "\nnote the gap: the ~40-virtual-minute VPN gateway dominates the critical\n\
         path; schedulers that start it late pay for it (paper §3.3)."
    );
}
