//! Porting a ClickOps deployment to IaC (§3.1).
//!
//! A "pre-IaC enterprise" builds infrastructure directly through cloud API
//! calls (no IaC state). We then port it two ways — the Terraformer-style
//! naive dump and the cloudless optimizer — and compare the generated
//! programs on the paper's code-quality axes.
//!
//! ```text
//! cargo run --example import
//! ```

use cloudless::cloud::{ApiOp, ApiRequest, Cloud, CloudConfig, OpOutcome, ResourceRecord};
use cloudless::port::{metrics, naive_port, optimized_port};
use cloudless::types::value::attrs;
use cloudless::types::{Region, ResourceTypeName, Value};

/// Build a fleet the way a ClickOps admin would: one API call at a time.
fn clickops_build(cloud: &mut Cloud) -> Vec<ResourceRecord> {
    let mut create = |rtype: &str, region: &str, a: cloudless::types::Attrs| -> String {
        let done = cloud
            .submit_and_settle(ApiRequest::new(
                ApiOp::Create {
                    rtype: ResourceTypeName::new(rtype),
                    region: Region::new(region),
                    attrs: a,
                },
                "clickops-admin",
            ))
            .expect("front door accepts");
        match done.outcome {
            OpOutcome::Created { id, .. } => id.to_string(),
            other => panic!("create failed: {other:?}"),
        }
    };

    let vpc = create(
        "aws_vpc",
        "us-east-1",
        attrs([("cidr_block", Value::from("10.0.0.0/16"))]),
    );
    let subnet = create(
        "aws_subnet",
        "us-east-1",
        attrs([
            ("vpc_id", Value::from(vpc.as_str())),
            ("cidr_block", Value::from("10.0.1.0/24")),
        ]),
    );
    // a hand-built fleet of 6 identical web servers
    for i in 0..6 {
        create(
            "aws_virtual_machine",
            "us-east-1",
            attrs([
                ("name", Value::from(format!("web-{i}"))),
                ("instance_type", Value::from("t3.micro")),
                ("subnet_id", Value::from(subnet.as_str())),
            ]),
        );
    }
    // three buckets named by hand
    for name in ["logs", "media", "backups"] {
        create(
            "aws_s3_bucket",
            "us-east-1",
            attrs([("bucket", Value::from(name))]),
        );
    }
    cloud.records().values().cloned().collect()
}

fn main() {
    let mut cloud = Cloud::new(CloudConfig::exact(), 7);
    let records = clickops_build(&mut cloud);
    println!(
        "ClickOps deployment: {} live resources, built with {} API calls\n",
        records.len(),
        cloud.total_api_calls()
    );

    let catalog = cloud.catalog().clone();
    let naive = naive_port(&records, &catalog);
    let optimized = optimized_port(&records, &catalog);

    let naive_metrics = metrics::measure(&naive);
    let opt_metrics = metrics::measure(&optimized.file);

    println!("=== naive port (Terraformer-style) ===");
    println!("{}", cloudless::hcl::render_file(&naive));
    println!("=== optimized port (cloudless) ===");
    println!("{}", cloudless::hcl::render_file(&optimized.file));

    println!("=== code-quality comparison (§3.1 / experiment E7) ===");
    println!(
        "{:<24} {:>8} {:>8} {:>11} {:>12} {:>8}",
        "port", "lines", "blocks", "redundancy", "abstraction", "quality"
    );
    for (name, m) in [("naive", &naive_metrics), ("optimized", &opt_metrics)] {
        println!(
            "{:<24} {:>8} {:>8} {:>10.0}% {:>11.0}% {:>8.1}",
            name,
            m.lines,
            m.blocks,
            m.redundancy() * 100.0,
            m.abstraction() * 100.0,
            metrics::quality_score(m)
        );
    }
    println!(
        "\nthe optimizer recovered {} reference(s) and compacted {} instance(s)",
        opt_metrics.references, opt_metrics.compacted_instances
    );
}
