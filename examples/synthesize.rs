//! §3.1's synthesis pipeline, live: an intent ("two web VMs on Azure, a
//! Postgres database, an assets bucket") becomes a *valid* program via
//! type-guided dependency closure — and deploys on the first try.
//!
//! For contrast, the unguided baseline (hallucination modeled at 30%) is
//! also run; its failure is translated by the §3.5 error machinery.
//!
//! ```text
//! cargo run --example synthesize
//! ```

use cloudless::cloud::CloudConfig;
use cloudless::synth::{synthesize, unguided_baseline, Intent, SynthConfig, WantedResource};
use cloudless::types::Value;
use cloudless::{Cloudless, Config};

fn main() {
    let intent = Intent::new(vec![
        WantedResource::new("azure_virtual_machine", 2, "web")
            .with_attr("size", Value::from("Standard_D2s")),
        WantedResource::new("azure_sql_database", 1, "appdb"),
        WantedResource::new("azure_storage_account", 1, "assets"),
    ])
    .in_region("westeurope");

    println!("intent: 2 web VMs + a SQL database + a storage account, westeurope\n");

    let engine = Cloudless::new(Config {
        cloud: CloudConfig::exact(),
        ..Config::default()
    });
    let catalog = engine.cloud().catalog().clone();

    // -- the cloudless synthesizer --
    let guided = synthesize(&intent, &catalog, None, &SynthConfig::default());
    println!(
        "=== synthesized program (valid: {}, attempts: {}) ===",
        guided.valid, guided.attempts
    );
    println!("{}", guided.source);

    // -- deploy it --
    let mut engine = engine;
    let outcome = engine
        .converge(&guided.source)
        .expect("synthesized program converges");
    assert!(outcome.apply.all_ok());
    println!(
        "deployed {} resources in {} (virtual) — first try\n",
        engine.state().len(),
        outcome.apply.makespan()
    );

    // -- the baseline, for contrast --
    let mut invalid = 0;
    const RUNS: u64 = 10;
    for seed in 0..RUNS {
        if !unguided_baseline(&intent, &catalog, 0.3, seed).valid {
            invalid += 1;
        }
    }
    println!(
        "the unguided baseline (30% hallucination, no dependency closure)\n\
         produced invalid programs in {invalid}/{RUNS} runs; one sample failure:"
    );
    let sample = (0..RUNS)
        .map(|seed| unguided_baseline(&intent, &catalog, 0.3, seed))
        .find(|r| !r.valid);
    if let Some(bad) = sample {
        let fresh = Cloudless::new(Config::default());
        match fresh.load(&bad.source) {
            Ok(manifest) => {
                let report = fresh.validate(&manifest);
                for d in report.diagnostics.iter().take(3) {
                    println!("  {d}");
                }
            }
            Err(d) => {
                for item in d.iter().take(3) {
                    println!("  {item}");
                }
            }
        }
    }
}
